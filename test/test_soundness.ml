(* Experiment S1 as properties: the deadlock-avoidance wrappers driven
   by the computed intervals never deadlock, under the filtering
   disciplines for which each table is sound (DESIGN.md, deviation 3):

   - Non-Propagation table + absorbing wrapper: arbitrary filtering.
   - Propagation table + forwarding wrapper: filtering at graph sources
     and pure relay nodes (the paper's motivating pattern).
   - Non-Propagation table + forwarding wrapper ("sound propagation"):
     arbitrary filtering. *)

open Fstream_graph
open Fstream_core
open Fstream_runtime

let adversarial g seed =
  let rng = Random.State.make [| seed |] in
  Filters.for_graph g (fun _ outs -> Filters.bernoulli rng ~keep:0.6 outs)

let source_and_relay g seed =
  let rng = Random.State.make [| seed |] in
  Filters.for_graph g (fun v outs ->
      if Graph.in_degree g v = 0 || Graph.out_degree g v = 1 then
        Filters.bernoulli rng ~keep:0.6 outs
      else Filters.passthrough outs)

let completes g kernels avoidance =
  let s = Engine.run ~graph:g ~kernels ~inputs:50 ~avoidance () in
  s.Report.outcome = Report.Completed

let prop_nonprop_sound =
  Tutil.qtest ~count:120 "non-propagation: sound under arbitrary filtering"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        completes g (adversarial g seed)
          (Engine.Non_propagation (Compiler.send_thresholds g p.intervals)))

let prop_propagation_sound_on_paper_pattern =
  Tutil.qtest ~count:120
    "propagation: sound when filtering sits at sources and relays"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Compiler.compile Compiler.Propagation g with
      | Error _ -> false
      | Ok p ->
        completes g (source_and_relay g seed)
          (Engine.Propagation (Compiler.propagation_thresholds g p.intervals)))

let prop_hybrid_sound =
  Tutil.qtest ~count:120
    "forwarding wrapper with run-sum thresholds: sound under arbitrary filtering"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        completes g (adversarial g seed)
          (Engine.Propagation (Compiler.send_thresholds g p.intervals)))

let prop_all_data_delivered =
  (* liveness + integrity: with avoidance on, every kept data message
     reaches the sinks (the engine counts sink-consumed data) *)
  Tutil.qtest ~count:80 "avoidance does not lose or duplicate data"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        let thresholds = Compiler.send_thresholds g p.intervals in
        let run kernels =
          Engine.run ~graph:g ~kernels ~inputs:50
            ~avoidance:(Engine.Non_propagation thresholds) ()
        in
        (* no filtering: a two-terminal DAG delivers every seq on every
           sink in-edge; with filtering: never more than that *)
        let full = run (Filters.for_graph g (fun _ o -> Filters.passthrough o)) in
        let filtered = run (adversarial g seed) in
        let sink_in =
          List.fold_left
            (fun acc v -> acc + Graph.in_degree g v)
            0 (Graph.sinks g)
        in
        full.Report.outcome = Report.Completed
        && full.Report.sink_data = 50 * sink_in
        && filtered.Report.sink_data <= full.Report.sink_data)

let test_deadlock_exists_without_avoidance () =
  (* sanity for the whole experiment: the bare model really does
     deadlock on an adversarial workload (Fig. 2) *)
  let g = Fstream_workloads.Topo_gen.fig2_triangle ~cap:1 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  let s = Engine.run ~graph:g ~kernels ~inputs:10 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "deadlocked" true (s.Report.outcome = Report.Deadlocked)

let suite =
  [
    Alcotest.test_case "bare model deadlocks" `Quick
      test_deadlock_exists_without_avoidance;
    prop_nonprop_sound;
    prop_propagation_sound_on_paper_pattern;
    prop_hybrid_sound;
    prop_all_data_delivered;
  ]
