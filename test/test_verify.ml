(* The bounded model checker: exhaustive soundness proofs for small
   instances, and machine-found counterexamples. These are the
   strongest results in the repository — "Safe" means every
   interleaving and every filtering choice was explored. *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads
open Fstream_verify

let nonprop_avoidance g =
  match Compiler.compile Compiler.Non_propagation g with
  | Ok p -> Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let prop_avoidance g =
  match Compiler.compile Compiler.Propagation g with
  | Ok p -> Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let is_safe = function Verify.Safe _ -> true | _ -> false
let is_deadlock = function Verify.Deadlocks _ -> true | _ -> false

let test_fig2 () =
  let g = Topo_gen.fig2_triangle ~cap:1 in
  Alcotest.(check bool) "bare model deadlocks somewhere" true
    (is_deadlock (Verify.check ~graph:g ~avoidance:Engine.No_avoidance ~inputs:4 ()));
  Alcotest.(check bool) "non-propagation provably safe" true
    (is_safe (Verify.check ~graph:g ~avoidance:(nonprop_avoidance g) ~inputs:4 ()));
  Alcotest.(check bool) "propagation provably safe" true
    (is_safe (Verify.check ~graph:g ~avoidance:(prop_avoidance g) ~inputs:4 ()))

let test_fig2_trace_replay () =
  (* the checker's counterexample must be meaningful: a trace exists
     and begins with a source firing *)
  let g = Topo_gen.fig2_triangle ~cap:1 in
  match Verify.check ~graph:g ~avoidance:Engine.No_avoidance ~inputs:4 () with
  | Verify.Deadlocks { trace; _ } ->
    Alcotest.(check bool) "trace non-empty" true (trace <> []);
    Alcotest.(check bool) "starts at the source" true
      (String.length (List.hd trace) > 2
      && String.sub (List.hd trace) 0 2 = "n0")
  | _ -> Alcotest.fail "expected a deadlock"

let test_erosion_counterexample () =
  let g = Topo_gen.erosion_counterexample () in
  (* the paper-literal Propagation table wedges... *)
  Alcotest.(check bool) "paper propagation table deadlocks" true
    (is_deadlock
       (Verify.check ~strategy:`Dfs ~graph:g ~avoidance:(prop_avoidance g)
          ~inputs:4 ()))

let test_erosion_nonprop_safe () =
  let g = Topo_gen.erosion_counterexample () in
  (* ...while the run-sum (L/h) table is exhaustively safe *)
  Alcotest.(check bool) "non-propagation table provably safe" true
    (is_safe
       (Verify.check ~graph:g ~avoidance:(nonprop_avoidance g) ~inputs:4 ()))

let test_pipeline_trivially_safe () =
  let g = Topo_gen.pipeline ~stages:3 ~cap:1 in
  Alcotest.(check bool) "acyclic pipeline safe without avoidance" true
    (is_safe (Verify.check ~graph:g ~avoidance:Engine.No_avoidance ~inputs:3 ()))

let test_budget () =
  let g = Topo_gen.fig4_left ~cap:2 in
  match
    Verify.check ~max_states:50 ~graph:g ~avoidance:Engine.No_avoidance
      ~inputs:5 ()
  with
  | Verify.Out_of_budget _ | Verify.Deadlocks _ -> ()
  | Verify.Safe _ -> Alcotest.fail "50 states cannot cover this space"

let prop_checker_agrees_with_engine =
  (* consistency of the two semantics: when the checker proves a small
     instance safe, the engine must complete on it under arbitrary
     sampled kernels *)
  Tutil.qtest ~count:12 "Safe verdicts imply engine completion"
    Tutil.seed_gen (fun seed ->
      let rng = Tutil.rng_of seed in
      let g =
        Topo_gen.random_sp rng ~target_edges:(2 + Random.State.int rng 2)
          ~max_cap:2
      in
      let avoidance = nonprop_avoidance g in
      match
        Verify.check ~max_states:60_000 ~graph:g ~avoidance ~inputs:3 ()
      with
      | Verify.Out_of_budget _ | Verify.Deadlocks _ ->
        true (* no claim to cross-check *)
      | Verify.Safe _ ->
        List.for_all
          (fun kseed ->
            let krng = Random.State.make [| kseed |] in
            let kernels =
              Filters.for_graph g (fun _ outs ->
                  Filters.bernoulli krng ~keep:0.5 outs)
            in
            let s = Engine.run ~graph:g ~kernels ~inputs:3 ~avoidance () in
            s.Report.outcome = Report.Completed)
          [ 1; 2; 3 ])

let test_tightness_fig2 () =
  (* A3: the computed table is safe; tripling the branch budgets brings
     the wedge back — the intervals are near-minimal *)
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let check ?strategy ~inputs t =
    Verify.check ?strategy ~graph:g
      ~avoidance:(Engine.Non_propagation (Thresholds.of_array g t))
      ~inputs ()
  in
  (* safety needs the full space: BFS at 6 inputs (~290k states);
     wedges are found quickly by DFS at 8 inputs *)
  Alcotest.(check bool) "computed table safe" true
    (is_safe (check ~inputs:6 [| Some 1; Some 1; Some 4 |]));
  Alcotest.(check bool) "tripled branch budgets deadlock" true
    (is_deadlock (check ~strategy:`Dfs ~inputs:8 [| Some 3; Some 3; Some 4 |]));
  Alcotest.(check bool) "doubled shortcut budget deadlocks" true
    (is_deadlock (check ~strategy:`Dfs ~inputs:8 [| Some 1; Some 1; Some 8 |]))

let suite =
  [
    Alcotest.test_case "fig2 verdicts" `Quick test_fig2;
    Alcotest.test_case "fig2 trace replay" `Quick test_fig2_trace_replay;
    Alcotest.test_case "erosion: paper propagation deadlocks" `Quick
      test_erosion_counterexample;
    Alcotest.test_case "erosion: non-propagation safe" `Slow
      test_erosion_nonprop_safe;
    Alcotest.test_case "pipeline safe" `Quick test_pipeline_trivially_safe;
    Alcotest.test_case "budget handling" `Quick test_budget;
    Alcotest.test_case "tightness on fig2 (A3)" `Slow test_tightness_fig2;
    prop_checker_agrees_with_engine;
  ]
