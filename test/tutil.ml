(* Shared helpers for the test suites. *)

open Fstream_graph
open Fstream_core

let interval : Interval.t Alcotest.testable =
  Alcotest.testable Interval.pp Interval.equal

let ival_array : Interval.t array Alcotest.testable =
  Alcotest.(array interval)

let check_intervals msg expected actual =
  Alcotest.check ival_array msg expected actual

let rng_of seed = Random.State.make [| seed; 0x5f1ee7 |]

(* Random graph families keyed by an integer seed, so QCheck can use a
   plain int generator (with shrinking) while the graphs stay
   reproducible. *)
let random_sp_of_seed ?(max_edges = 16) seed =
  let rng = rng_of seed in
  Fstream_workloads.Topo_gen.random_sp rng
    ~target_edges:(2 + Random.State.int rng (max_edges - 1))
    ~max_cap:7

let random_ladder_of_seed ?(max_rungs = 5) seed =
  let rng = rng_of seed in
  Fstream_workloads.Topo_gen.random_ladder rng
    ~rungs:(1 + Random.State.int rng max_rungs)
    ~segment_edges:(1 + Random.State.int rng 4)
    ~max_cap:7

let random_cs4_of_seed ?(max_blocks = 4) seed =
  let rng = rng_of seed in
  Fstream_workloads.Topo_gen.random_cs4 rng
    ~blocks:(1 + Random.State.int rng max_blocks)
    ~block_edges:(2 + Random.State.int rng 9)
    ~max_cap:7

(* A random two-terminal DAG that is usually *not* CS4: a random SP
   skeleton plus random forward chords. *)
let random_dag_of_seed seed =
  let rng = rng_of seed in
  let g0 =
    Fstream_workloads.Topo_gen.random_sp rng
      ~target_edges:(3 + Random.State.int rng 8)
      ~max_cap:4
  in
  let n = Graph.num_nodes g0 in
  let rank = Topo.rank g0 in
  let edges =
    ref
      (List.map (fun (e : Graph.edge) -> (e.src, e.dst, e.cap)) (Graph.edges g0))
  in
  for _ = 1 to Random.State.int rng 4 do
    let a = Random.State.int rng n and b = Random.State.int rng n in
    if rank.(a) < rank.(b) then
      edges := (a, b, 1 + Random.State.int rng 3) :: !edges
  done;
  Graph.make ~nodes:n (List.rev !edges)

(* Reproducibility override: [QCHECK_SEED=n dune runtest] pins the
   generator state of every qcheck suite that goes through [qtest] (the
   same variable qcheck's own runner honours), so a failing case can be
   replayed exactly. Each test gets a fresh state from the seed — tests
   must not couple through shared generator state. *)
let qcheck_seed =
  Option.bind (Sys.getenv_opt "QCHECK_SEED") (fun s ->
      int_of_string_opt (String.trim s))

let qtest ?(count = 200) name gen prop =
  let rand = Option.map (fun seed -> Random.State.make [| seed |]) qcheck_seed in
  QCheck_alcotest.to_alcotest ?rand (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.nat
